package analysis

import "go/ast"

// orderedMapDirs are the packages whose output feeds figures, tables
// and result slices — exactly where map-iteration order would leak into
// bytes the determinism guarantee covers.
var orderedMapDirs = []string{"internal/sim", "internal/stats", "internal/trace"}

// OrderedMapOutput flags `range` over a map when the loop body feeds an
// order-sensitive sink — a fmt print call or an append into a result
// slice — inside the result-producing packages. Go randomizes map
// iteration order on purpose, so such a loop emits differently ordered
// bytes on every run. Iterate a sorted key slice instead. A function
// that calls into sort or slices anywhere is exempt: the dominant fix —
// collect keys, sort them, iterate the slice — necessarily ranges the
// map once while collecting, and that loop must not re-fire the rule.
// Any other deliberate site carries //lint:ignore with a reason (e.g.
// the loop only accumulates a commutative sum).
//
// Map detection is syntactic (no type checker): an expression is
// treated as a map if it is a map literal, a make(map[...]) call, a
// local identifier declared as one of those or with an explicit map
// type, or a selector whose field name resolves to a map-typed struct
// field somewhere in the package.
type OrderedMapOutput struct{}

// Name implements Rule.
func (*OrderedMapOutput) Name() string { return "ordered-map-output" }

// Doc implements Rule.
func (*OrderedMapOutput) Doc() string {
	return "range over a map must not feed prints or result slices in sim/stats/trace; sort keys first"
}

// Check implements Rule.
func (*OrderedMapOutput) Check(f *File, report func(ast.Node, string, ...any)) {
	inScope := false
	for _, dir := range orderedMapDirs {
		if f.In(dir) {
			inScope = true
			break
		}
	}
	if !inScope || f.IsTest() {
		return
	}
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		checkFunc(f, fd, report)
	}
}

// checkFunc walks one function body looking for offending range loops.
func checkFunc(f *File, fd *ast.FuncDecl, report func(ast.Node, string, ...any)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !isMapExpr(f, rng.X) {
			return true
		}
		sink := orderSensitiveSink(f, rng.Body)
		if sink == "" {
			return true
		}
		// A sort.*/slices.* call anywhere in the function is taken
		// as evidence the author handled ordering (the fix pattern
		// ranges the map once to collect keys, then sorts).
		if sortsInFunc(f, fd) {
			return true
		}
		report(rng, "range over map feeds %s in order-sensitive code; iterate sorted keys instead", sink)
		return true
	})
}

// sortsInFunc reports whether the function calls into package sort or
// slices.
func sortsInFunc(f *File, fd *ast.FuncDecl) bool {
	var pkgNames []string
	for _, imp := range []string{"sort", "slices"} {
		if name, ok := f.ImportName(imp); ok {
			pkgNames = append(pkgNames, name)
		}
	}
	if len(pkgNames) == 0 {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Obj != nil {
			return true
		}
		for _, pkgName := range pkgNames {
			if id.Name == pkgName {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// orderSensitiveSink scans a range body for an output whose bytes (or
// element order) depend on iteration order. It returns a short
// description of the first sink found, or "".
func orderSensitiveSink(f *File, body *ast.BlockStmt) string {
	fmtName, hasFmt := f.ImportName("fmt")
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && fun.Obj == nil {
				sink = "an append into a result slice"
				return false
			}
		case *ast.SelectorExpr:
			if !hasFmt {
				return true
			}
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == fmtName && id.Obj == nil {
				sink = "fmt." + fun.Sel.Name
				return false
			}
		}
		return true
	})
	return sink
}

// isMapExpr reports whether expr syntactically denotes a map.
func isMapExpr(f *File, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		return isMakeMap(e)
	case *ast.Ident:
		return identIsMap(e)
	case *ast.SelectorExpr:
		return fieldIsMap(f.Pkg, e.Sel.Name)
	}
	return false
}

// isMakeMap reports whether e is make(map[...], ...).
func isMakeMap(e *ast.CallExpr) bool {
	id, ok := e.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || id.Obj != nil || len(e.Args) == 0 {
		return false
	}
	_, ok = e.Args[0].(*ast.MapType)
	return ok
}

// identIsMap chases a local identifier to its declaration (the parser
// resolves file-local objects) and reports whether it was declared as a
// map: an explicit map type in a var/param/field, a map literal, or a
// make(map[...]).
func identIsMap(id *ast.Ident) bool {
	if id.Obj == nil {
		return false
	}
	switch decl := id.Obj.Decl.(type) {
	case *ast.ValueSpec:
		if _, ok := decl.Type.(*ast.MapType); ok {
			return true
		}
		for i, name := range decl.Names {
			if name.Name == id.Name && i < len(decl.Values) {
				return exprMakesMap(decl.Values[i])
			}
		}
	case *ast.Field:
		_, ok := decl.Type.(*ast.MapType)
		return ok
	case *ast.AssignStmt:
		for i, lhs := range decl.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || lid.Name != id.Name {
				continue
			}
			if len(decl.Rhs) == len(decl.Lhs) {
				return exprMakesMap(decl.Rhs[i])
			}
		}
	}
	return false
}

// exprMakesMap reports whether the expression constructs a map.
func exprMakesMap(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		_, ok := v.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		return isMakeMap(v)
	}
	return false
}

// fieldIsMap reports whether any struct in the package declares a field
// with this name and a map type. Name-based and therefore conservative
// in the flagging direction only when the name is unambiguous; a false
// positive is silenced with //lint:ignore plus the reason.
func fieldIsMap(pkg *Package, name string) bool {
	for _, f := range pkg.Files {
		found := false
		ast.Inspect(f.AST, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || found {
				return !found
			}
			for _, fld := range st.Fields.List {
				for _, fn := range fld.Names {
					if fn.Name == name {
						if _, ok := fld.Type.(*ast.MapType); ok {
							found = true
							return false
						}
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
