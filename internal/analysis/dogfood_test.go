package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestDogfood runs the full rule set over the repository's own tree and
// asserts zero findings. This is the self-check behind the verify gate:
// a regression in either direction — a rule that starts misfiring on
// clean code, or code that starts violating an invariant — fails
// `go test ./...` before it ever reaches `make verify`.
func TestDogfood(t *testing.T) {
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("suspiciously few packages (%d) loaded from %s", len(pkgs), root)
	}
	for _, d := range Run(pkgs, Rules()) {
		t.Errorf("%s", d)
	}
}

// findModuleRoot walks up from the test's working directory (the
// package directory under `go test`) to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
